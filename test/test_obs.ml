(* Tests for the observability layer: the JSON codec, the metrics
   registry (including snapshot merge), the event sinks, and the recorder
   threaded through a real runner. *)

open Anon_obs
module G = Anon_giraf
module C = Anon_consensus

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Json ------------------------------------------------------------------- *)

let json = Alcotest.testable Json.pp Json.equal

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\nline\\slash");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int 2; Json.Obj [] ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.check json "roundtrip" v v'
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_non_finite () =
  (* nan/inf have no JSON encoding; the printer degrades them to null
     rather than emitting an unparseable token. *)
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "tru";
  bad "1 2"

let test_json_unicode_escapes () =
  let parses s expected =
    match Json.of_string s with
    | Ok (Json.String got) -> Alcotest.(check string) s expected got
    | Ok _ -> Alcotest.failf "%S parsed to a non-string" s
    | Error e -> Alcotest.failf "%S: %s" s e
  in
  (* \u escapes decode to UTF-8 bytes, not truncated chars. *)
  parses {|"\u0041"|} "A";
  parses {|"\u00e9"|} "\xc3\xa9" (* e-acute *);
  parses {|"\u00E9"|} "\xc3\xa9" (* upper-case hex digits *);
  parses {|"\u2713"|} "\xe2\x9c\x93" (* check mark *);
  parses {|"\u0000"|} "\x00";
  (* A surrogate pair decodes to one astral code point. *)
  parses {|"\ud83d\ude00"|} "\xf0\x9f\x98\x80" (* U+1F600 *);
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  (* Lone or misordered surrogates are rejected. *)
  bad {|"\ud83d"|};
  bad {|"\ud83d rest"|};
  bad {|"\ude00"|};
  bad {|"\ud83dA"|};
  bad {|"\u12"|};
  bad {|"\u12g4"|}

let test_json_non_ascii_roundtrip () =
  (* Raw UTF-8 passes through the printer untouched and survives the
     parser; escaped input re-prints as the same raw bytes. *)
  List.iter
    (fun s ->
      let v = Json.String s in
      match Json.of_string (Json.to_string v) with
      | Ok v' -> Alcotest.check json ("roundtrip " ^ s) v v'
      | Error e -> Alcotest.failf "%s: %s" s e)
    [ "h\xc3\xa9llo"; "\xe2\x9c\x93 done"; "\xf0\x9f\x98\x80";
      "mixed \xe2\x9c\x93 \xf0\x9f\x98\x80 end" ];
  match Json.of_string {|"caf\u00e9 \u2713 \ud83d\ude00"|} with
  | Ok v ->
    Alcotest.check json "escapes normalize to UTF-8"
      (Json.String "caf\xc3\xa9 \xe2\x9c\x93 \xf0\x9f\x98\x80") v
  | Error e -> Alcotest.failf "parse error: %s" e

(* --- Metrics ---------------------------------------------------------------- *)

let test_metrics_counters_gauges () =
  let r = Metrics.create () in
  let c = Metrics.counter r "a.count" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check_int "counter" 5 (Metrics.counter_value c);
  let c' = Metrics.counter r "a.count" in
  Metrics.incr c';
  check_int "same cell" 6 (Metrics.counter_value c);
  let g = Metrics.gauge r "a.gauge" in
  Metrics.set_gauge g 2.5;
  let h = Metrics.histogram r "a.hist_us" in
  Metrics.observe h 1.0;
  Metrics.observe h 3.0;
  let snap = Metrics.snapshot r in
  Alcotest.(check (list (pair string int))) "counters" [ ("a.count", 6) ] snap.counters;
  Alcotest.(check (list (pair string (float 1e-9)))) "gauges"
    [ ("a.gauge", 2.5) ] snap.gauges;
  (match snap.histograms with
  | [ ("a.hist_us", hist) ] ->
    check_int "samples" 2 (Hist.count hist);
    Alcotest.(check (float 1e-9)) "min" 1.0 (Hist.min_value hist);
    Alcotest.(check (float 1e-9)) "max" 3.0 (Hist.max_value hist)
  | _ -> Alcotest.fail "histogram snapshot shape");
  Metrics.reset r;
  let snap = Metrics.snapshot r in
  Alcotest.(check (list (pair string int))) "reset counters"
    [ ("a.count", 0) ] snap.counters;
  Alcotest.(check (list (pair string (float 1e-9)))) "reset gauges" [] snap.gauges

let test_metrics_disabled_noop () =
  let c = Metrics.counter Metrics.disabled "x" in
  Metrics.incr c;
  check_int "no-op counter" 0 (Metrics.counter_value c);
  let h = Metrics.histogram Metrics.disabled "y" in
  (* [time] on a no-op handle must still run the thunk. *)
  check_int "time passthrough" 7 (Metrics.time h (fun () -> 7));
  let snap = Metrics.snapshot Metrics.disabled in
  check_int "empty snapshot" 0 (List.length snap.counters)

let test_metrics_merge () =
  let mk c g hs =
    let r = Metrics.create () in
    Metrics.incr ~by:c (Metrics.counter r "n");
    (match g with
    | Some v -> Metrics.set_gauge (Metrics.gauge r "g") v
    | None -> ());
    List.iter (Metrics.observe (Metrics.histogram r "h")) hs;
    Metrics.snapshot r
  in
  let merged =
    Metrics.merge [ mk 2 (Some 1.0) [ 1.0 ]; mk 3 (Some 3.0) [ 2.0; 4.0 ]; mk 5 None [] ]
  in
  (* Counters sum; gauges average over the runs that set them; histograms
     merge bucket-wise. *)
  Alcotest.(check (list (pair string int))) "counters sum" [ ("n", 10) ] merged.counters;
  Alcotest.(check (list (pair string (float 1e-9)))) "gauges mean"
    [ ("g", 2.0) ] merged.gauges;
  (match merged.histograms with
  | [ ("h", hist) ] ->
    check_int "merged count" 3 (Hist.count hist);
    Alcotest.(check (float 1e-9)) "merged min" 1.0 (Hist.min_value hist);
    Alcotest.(check (float 1e-9)) "merged max" 4.0 (Hist.max_value hist)
  | _ -> Alcotest.fail "merged histogram shape")

let test_metrics_json () =
  let r = Metrics.create () in
  Metrics.incr (Metrics.counter r "c");
  Metrics.observe (Metrics.histogram r "h") 2.0;
  let j = Metrics.to_json (Metrics.snapshot r) in
  let open Json in
  check_bool "counter in json" true
    (Option.bind (member "counters" j) (member "c") = Some (Int 1));
  check_bool "histogram count" true
    (Option.bind (Option.bind (member "histograms" j) (member "h")) (member "count")
    = Some (Int 1))

(* --- Hist ------------------------------------------------------------------- *)

(* Deterministic pseudo-random sample stream (no Random state shared with
   other tests). *)
let lcg_samples ~seed n =
  let state = ref seed in
  List.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      float_of_int (1 + (!state mod 100_000)) /. 10.0)

let test_hist_edge_buckets () =
  let h = Hist.create () in
  (* Non-positive and non-finite samples land in the zero bucket: counted,
     exact min/max still tracked for finite samples. *)
  Hist.observe h 0.0;
  Hist.observe h (-3.0);
  Hist.observe h Float.nan;
  check_int "zero-bucket count" 3 (Hist.count h);
  Alcotest.(check (float 0.0)) "min exact" (-3.0) (Hist.min_value h);
  Alcotest.(check (float 0.0)) "max exact" 0.0 (Hist.max_value h);
  Alcotest.(check (float 0.0)) "p50 of zero bucket is min" (-3.0) (Hist.percentile h 50.0);
  (* Overflow bucket: beyond 2^43 the exact max survives. *)
  let big = Float.ldexp 1.0 50 in
  let o = Hist.create () in
  Hist.observe o big;
  Hist.observe o 1.0;
  Alcotest.(check (float 0.0)) "overflow max exact" big (Hist.max_value o);
  Alcotest.(check (float 0.0)) "p100 hits overflow max" big (Hist.percentile o 100.0);
  (* Tiny positives clamp into the first log bucket but keep the exact min. *)
  let tiny = Hist.create () in
  Hist.observe tiny 1e-30;
  Alcotest.(check (float 0.0)) "tiny min exact" 1e-30 (Hist.min_value tiny);
  (* Empty-histogram errors. *)
  check_bool "empty" true (Hist.is_empty (Hist.create ()));
  (match Hist.percentile (Hist.create ()) 50.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "percentile on empty must raise");
  match Hist.percentile h 101.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "percentile out of range must raise"

let test_hist_bucket_boundaries () =
  (* Exact powers of two sit on bucket boundaries; bucketing must be
     deterministic and quantization bounded by 2^(1/16) - 1 (~4.4%). *)
  let exact = [ 1.0; 2.0; 4.0; 1024.0; 0.5; 3.0; 7.5; 100.0 ] in
  List.iter
    (fun v ->
      let h = Hist.create () in
      Hist.observe h v;
      let p50 = Hist.percentile h 50.0 in
      (* A single sample clamps to its own exact min/max. *)
      Alcotest.(check (float 0.0)) (Printf.sprintf "p50 of singleton %g" v) v p50;
      let m = Hist.mean h in
      Alcotest.(check (float 0.0)) (Printf.sprintf "mean of singleton %g" v) v m)
    exact;
  (* Two samples straddling a boundary: reconstruction stays within the
     quantization bound of the true values. *)
  let h = Hist.create () in
  Hist.observe h 10.0;
  Hist.observe h 1000.0;
  let p95 = Hist.percentile h 95.0 in
  check_bool "p95 within 4.5% of 1000" true
    (Float.abs (p95 -. 1000.0) /. 1000.0 <= 0.045);
  (* Same samples, same buckets: structural equality. *)
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.observe a) (lcg_samples ~seed:3 500);
  List.iter (Hist.observe b) (lcg_samples ~seed:3 500);
  check_bool "deterministic bucketing" true (Hist.equal a b)

let test_hist_merge_laws () =
  let mk seed n =
    let h = Hist.create () in
    List.iter (Hist.observe h) (lcg_samples ~seed n);
    h
  in
  let a = mk 1 400 and b = mk 2 700 and c = mk 3 150 in
  (* Associativity and commutativity, in the strict structural sense. *)
  let left = Hist.merge [ Hist.merge [ a; b ]; c ] in
  let right = Hist.merge [ a; Hist.merge [ b; c ] ] in
  let flat = Hist.merge [ a; b; c ] in
  let perm = Hist.merge [ c; a; b ] in
  check_bool "associative (left = right)" true (Hist.equal left right);
  check_bool "flat = nested" true (Hist.equal flat left);
  check_bool "commutative" true (Hist.equal flat perm);
  check_int "merged count" (400 + 700 + 150) (Hist.count flat);
  (* Identity and empties. *)
  check_bool "merge [] is empty" true (Hist.is_empty (Hist.merge []));
  check_bool "merge with empty is identity" true
    (Hist.equal (Hist.copy a) (Hist.merge [ a; Hist.create () ]));
  (* The merge result is fresh: mutating it leaves inputs alone. *)
  let n_a = Hist.count a in
  Hist.observe flat 1.0;
  check_int "inputs untouched" n_a (Hist.count a)

let test_hist_bounded_million () =
  (* 10^6 observations: storage is the fixed bucket array, and summary
     statistics stay within the documented quantization error. *)
  let h = Hist.create () in
  for i = 1 to 1_000_000 do
    Hist.observe h (float_of_int (((i * 7919) mod 1000) + 1))
  done;
  check_int "count exact" 1_000_000 (Hist.count h);
  check_int "bucket_count fixed" Hist.bucket_count ((44 + 20) * 16 + 2);
  Alcotest.(check (float 0.0)) "min exact" 1.0 (Hist.min_value h);
  Alcotest.(check (float 0.0)) "max exact" 1000.0 (Hist.max_value h);
  (* gcd(7919, 1000) = 1, so the samples are 1..1000 uniform (1000 full
     cycles): true mean 500.5. Allow the 4.4% quantization bound. *)
  let m = Hist.mean h in
  check_bool "mean within quantization bound" true
    (Float.abs (m -. 500.5) /. 500.5 <= 0.045);
  match Hist.summary h with
  | None -> Alcotest.fail "summary of non-empty histogram"
  | Some s ->
    check_int "summary count" 1_000_000 s.count;
    check_bool "summary p50 within bound" true
      (Float.abs (s.p50 -. 500.0) /. 500.0 <= 0.05)

(* --- Events ----------------------------------------------------------------- *)

let event = Alcotest.testable Event.pp Event.equal

let all_events =
  [
    Event.Run_start { algo = "es"; n = 4; seed = 7 };
    Event.Run_end { rounds = 12; decided = true };
    Event.Round_start { round = 3 };
    Event.Round_end { round = 3; senders = 4; delivered = 12; timely = 9 };
    Event.Broadcast { pid = 1; round = 3; size = 5 };
    Event.Deliver { sender = 0; receiver = 2; round = 3; arrival = 4 };
    Event.Decide { pid = 2; round = 5; value = 41 };
    Event.Crash { pid = 3; round = 2 };
    Event.Leader { pid = 0; round = 6; leader = false };
    Event.Ws_add { pid = 1; round = 2; value = 10 };
    Event.Ws_add_done { pid = 1; round = 4; value = 10 };
    Event.Ws_get { pid = 2; round = 4; size = 3 };
    Event.Shm_step { step = 17; pid = 1 };
    Event.Shm_done { pid = 1; op_index = 2; invoked = 10; completed = 17 };
    Event.Fault { kind = "duplicate"; round = 3; sender = 1; receiver = 2 };
    Event.Fault { kind = "drop_obligated"; round = 5; sender = 0; receiver = -1 };
  ]

let test_event_roundtrip () =
  List.iter
    (fun ev ->
      match Event.of_json (Event.to_json ev) with
      | Ok ev' -> Alcotest.check event "roundtrip" ev ev'
      | Error e -> Alcotest.failf "decode failed (%s): %s" e (Json.to_string (Event.to_json ev)))
    all_events

(* --- Sinks ------------------------------------------------------------------ *)

let test_sink_ring () =
  let s = Sink.memory ~capacity:3 in
  check_bool "not null" false (Sink.is_null s);
  List.iteri (fun i _ -> Sink.emit s (Event.Round_start { round = i })) (List.init 5 Fun.id);
  (* Capacity 3, 5 emits: the two oldest are overwritten. *)
  Alcotest.(check (list event)) "last three, oldest first"
    [
      Event.Round_start { round = 2 };
      Event.Round_start { round = 3 };
      Event.Round_start { round = 4 };
    ]
    (Sink.events s);
  check_int "dropped" 2 (Sink.dropped s)

let test_sink_null_and_tee () =
  check_bool "null" true (Sink.is_null Sink.null);
  check_bool "tee of nulls" true (Sink.is_null (Sink.tee [ Sink.null; Sink.null ]));
  let a = Sink.memory ~capacity:8 and b = Sink.memory ~capacity:8 in
  let t = Sink.tee [ a; b ] in
  check_bool "tee live" false (Sink.is_null t);
  Sink.emit t (Event.Crash { pid = 0; round = 1 });
  check_int "both children" 2 (List.length (Sink.events a) + List.length (Sink.events b))

let test_sink_jsonl_roundtrip () =
  let path = Filename.temp_file "anonc_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let s = Sink.jsonl oc in
      List.iter (Sink.emit s) all_events;
      Sink.flush s;
      close_out oc;
      let ic = open_in path in
      let rec read acc =
        match input_line ic with
        | line -> (
          match Json.of_string line with
          | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e
          | Ok j -> (
            match Event.of_json j with
            | Error e -> Alcotest.failf "bad event %S: %s" line e
            | Ok ev -> read (ev :: acc)))
        | exception End_of_file -> List.rev acc
      in
      let evs = read [] in
      close_in ic;
      Alcotest.(check (list event)) "file roundtrip" all_events evs)

(* The satellite guarantee behind the at_exit hook: flushing a JSONL sink
   at an arbitrary mid-run instant leaves only complete, parseable lines
   on disk — an interrupted live run can't produce a truncated trace. *)
let test_sink_jsonl_midrun_flush () =
  let path = Filename.temp_file "anonc_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let s = Sink.jsonl oc in
      let early = [ Event.Round_start { round = 0 }; Event.Crash { pid = 1; round = 0 } ] in
      List.iter (Sink.emit s) early;
      (* Mid-run: the stream is still open and more events are coming. *)
      Sink.flush s;
      let read_lines () =
        let ic = open_in path in
        let rec go acc =
          match input_line ic with
          | line -> (
            match Json.of_string line with
            | Error e -> Alcotest.failf "invalid JSON line %S: %s" line e
            | Ok j -> (
              match Event.of_json j with
              | Error e -> Alcotest.failf "unparseable event %S: %s" line e
              | Ok ev -> go (ev :: acc)))
          | exception End_of_file ->
            close_in ic;
            List.rev acc
        in
        go []
      in
      Alcotest.(check (list event)) "mid-run flush = valid JSONL prefix" early
        (read_lines ());
      List.iter (Sink.emit s) all_events;
      Sink.close s;
      Sink.close s (* idempotent *);
      Sink.flush s (* no-op after close, must not raise *);
      Alcotest.(check (list event)) "close flushes the rest"
        (early @ all_events) (read_lines ()))

let test_sink_handler () =
  let got = ref [] in
  let s = Sink.handler (fun ev -> got := ev :: !got) in
  check_bool "handler is live" false (Sink.is_null s);
  List.iter (Sink.emit s) all_events;
  Alcotest.(check (list event)) "handler saw every event" all_events (List.rev !got);
  (* Handlers stream: they retain nothing and never drop. *)
  Alcotest.(check (list event)) "no retained events" [] (Sink.events s);
  check_int "no drops" 0 (Sink.dropped s);
  Sink.flush s

(* --- Trace ------------------------------------------------------------------- *)

(* Count trace events with a given "ph" in a rendered document. *)
let phase_count doc ph =
  match Json.member "traceEvents" doc with
  | Some (Json.List evs) ->
    List.length
      (List.filter (fun e -> Json.member "ph" e = Some (Json.String ph)) evs)
  | _ -> Alcotest.fail "traceEvents missing or not a list"

let test_trace_structure () =
  let tr = Trace.create () in
  let sink = Sink.tee [ Trace.sink tr; Sink.null ] in
  List.iter (Sink.emit sink) all_events;
  Alcotest.(check (list event)) "tracer accumulates in order" all_events
    (Trace.events tr);
  let doc = Trace.to_json tr in
  check_bool "displayTimeUnit present" true
    (Json.member "displayTimeUnit" doc = Some (Json.String "ms"));
  (* Flow arrows come in send/finish pairs sharing an id. *)
  check_int "flow starts = flow finishes" (phase_count doc "s") (phase_count doc "f");
  check_bool "has metadata records" true (phase_count doc "M" > 0);
  check_bool "has round spans" true (phase_count doc "X" > 0);
  check_bool "has instants" true (phase_count doc "i" > 0)

let run_es_traced () =
  let module R = G.Runner.Make (C.Es_consensus) in
  let tr = Trace.create () in
  let recorder = Recorder.create ~sink:(Trace.sink tr) () in
  let outcome =
    R.run ~recorder
      (G.Runner.default_config ~horizon:100 ~seed:11
         ~inputs:(List.init 6 (fun i -> i + 1))
         ~crash:(G.Crash.none ~n:6)
         (G.Adversary.es_blocking ~gst:8 ()))
  in
  (outcome, Trace.to_json tr)

let test_trace_runner_deterministic () =
  let outcome, doc1 = run_es_traced () in
  let _, doc2 = run_es_traced () in
  (* Logical timestamps only: a fixed-seed run exports byte-identical
     trace JSON every time. *)
  Alcotest.(check string) "byte-identical across runs" (Json.to_string doc1)
    (Json.to_string doc2);
  (* One decide instant per decision; every delivery is one flow pair. *)
  let instants =
    match Json.member "traceEvents" doc1 with
    | Some (Json.List evs) ->
      List.filter
        (fun e ->
          Json.member "ph" e = Some (Json.String "i")
          && Json.member "name" e = Some (Json.String "decide"))
        evs
    | _ -> Alcotest.fail "traceEvents missing"
  in
  check_int "decide instants" (List.length outcome.decisions) (List.length instants);
  check_int "flow pairs" outcome.deliveries (phase_count doc1 "s");
  (* The document itself must be valid JSON through the codec. *)
  match Json.of_string (Json.to_string doc1) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "trace document does not reparse: %s" e

(* --- Recorder + runner integration ------------------------------------------ *)

let test_recorder_off () =
  check_bool "off is inactive" false (Recorder.active Recorder.off);
  (* Event thunks must not run against the null sink. *)
  Recorder.emit Recorder.off (fun () -> Alcotest.fail "thunk forced on null sink")

let test_recorder_surfaces_drops () =
  (* A full ring sink drops oldest events; flushing the recorder surfaces
     the drop count as a metric so lossy captures are visible in
     [anonc metrics] reports. *)
  let registry = Metrics.create () in
  let sink = Sink.memory ~capacity:2 in
  let recorder = Recorder.create ~metrics:registry ~sink () in
  for i = 1 to 5 do
    Recorder.emit recorder (fun () -> Event.Round_start { round = i })
  done;
  Recorder.flush recorder;
  let dropped snap =
    Option.value ~default:0
      (List.assoc_opt "obs.events_dropped" snap.Metrics.counters)
  in
  check_int "3 drops surfaced" 3 (dropped (Metrics.snapshot registry));
  (* Surfacing is incremental: only new drops are added on later flushes. *)
  Recorder.emit recorder (fun () -> Event.Round_start { round = 6 });
  Recorder.emit recorder (fun () -> Event.Round_start { round = 7 });
  Recorder.flush recorder;
  check_int "incremental surfacing" 5 (dropped (Metrics.snapshot registry));
  (* No double counting when nothing new dropped. *)
  Recorder.flush recorder;
  check_int "idempotent when no new drops" 5 (dropped (Metrics.snapshot registry))

let run_es ~recorder =
  let module R = G.Runner.Make (C.Es_consensus) in
  R.run ~recorder
    (G.Runner.default_config ~horizon:100 ~seed:11
       ~inputs:(List.init 6 (fun i -> i + 1))
       ~crash:(G.Crash.none ~n:6)
       (G.Adversary.es_blocking ~gst:8 ()))

let test_runner_metrics_match_outcome () =
  let registry = Metrics.create () in
  let recorder = Recorder.create ~metrics:registry () in
  let outcome = run_es ~recorder in
  let snap = Metrics.snapshot registry in
  let c name = Option.value ~default:0 (List.assoc_opt name snap.counters) in
  (* The counters must agree exactly with the outcome the runner already
     reports through its return value. *)
  check_int "broadcasts" outcome.messages_sent (c "runner.broadcasts");
  check_int "deliveries" outcome.deliveries (c "runner.deliveries");
  check_int "timely" outcome.timely_deliveries (c "runner.timely_deliveries");
  check_int "decisions" (List.length outcome.decisions) (c "runner.decisions");
  check_bool "compute timer sampled" true
    (List.mem_assoc "phase.compute_us" snap.histograms)

let test_runner_event_stream () =
  let sink = Sink.memory ~capacity:100_000 in
  let recorder = Recorder.create ~sink () in
  let outcome = run_es ~recorder in
  let evs = Sink.events sink in
  let count p = List.length (List.filter p evs) in
  check_int "one run_start" 1
    (count (function Event.Run_start _ -> true | _ -> false));
  check_int "one run_end" 1 (count (function Event.Run_end _ -> true | _ -> false));
  check_int "decide events" (List.length outcome.decisions)
    (count (function Event.Decide _ -> true | _ -> false));
  check_int "deliver events" outcome.deliveries
    (count (function Event.Deliver _ -> true | _ -> false));
  check_int "broadcast events" outcome.messages_sent
    (count (function Event.Broadcast _ -> true | _ -> false));
  (* Every decide event must match a decision in the outcome. *)
  List.iter
    (function
      | Event.Decide { pid; round; value } ->
        check_bool "decision recorded" true
          (List.mem (pid, round, value) outcome.decisions)
      | _ -> ())
    evs

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "non-finite" `Quick test_json_non_finite;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "non-ascii roundtrip" `Quick
            test_json_non_ascii_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters/gauges/histograms" `Quick
            test_metrics_counters_gauges;
          Alcotest.test_case "disabled no-op" `Quick test_metrics_disabled_noop;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
          Alcotest.test_case "to_json" `Quick test_metrics_json;
        ] );
      ( "hist",
        [
          Alcotest.test_case "edge buckets" `Quick test_hist_edge_buckets;
          Alcotest.test_case "bucket boundaries" `Quick test_hist_bucket_boundaries;
          Alcotest.test_case "merge laws" `Quick test_hist_merge_laws;
          Alcotest.test_case "bounded at 10^6" `Quick test_hist_bounded_million;
        ] );
      ( "events",
        [ Alcotest.test_case "json roundtrip" `Quick test_event_roundtrip ] );
      ( "sinks",
        [
          Alcotest.test_case "ring buffer" `Quick test_sink_ring;
          Alcotest.test_case "null and tee" `Quick test_sink_null_and_tee;
          Alcotest.test_case "jsonl roundtrip" `Quick test_sink_jsonl_roundtrip;
          Alcotest.test_case "jsonl mid-run flush" `Quick
            test_sink_jsonl_midrun_flush;
          Alcotest.test_case "handler" `Quick test_sink_handler;
        ] );
      ( "trace",
        [
          Alcotest.test_case "structure" `Quick test_trace_structure;
          Alcotest.test_case "runner deterministic" `Quick
            test_trace_runner_deterministic;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "off" `Quick test_recorder_off;
          Alcotest.test_case "surfaces ring drops" `Quick test_recorder_surfaces_drops;
          Alcotest.test_case "runner metrics" `Quick test_runner_metrics_match_outcome;
          Alcotest.test_case "runner events" `Quick test_runner_event_stream;
        ] );
    ]
