(* Tests for the model checker: verdicts on known-good configurations,
   symmetry reduction, determinism across worker counts, and the
   counterexample-to-chaos-replay loop. *)

module G = Anon_giraf
module Mc = Anon_mc.Mc
module Explore = Anon_mc.Explore
module Witness = Anon_mc.Witness
module Ch = Anon_chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let config ?(algo = Mc.Es) ?(n = 2) ?(env = G.Env.Es { gst = 2 }) ?(rounds = 6)
    ?(crashes = 0) ?(churn = 0) ?(armed = false) ?(jobs = None)
    ?(search = Mc.Bfs) () =
  {
    Mc.algo;
    n;
    env;
    rounds;
    crashes;
    churn;
    max_delay = 1;
    search;
    armed;
    jobs;
    seed = 42;
    ops_per_client = 1;
  }

(* --- verdicts on known-good configurations ----------------------------------- *)

let test_es_verified () =
  (* ES at gst=2 closes by depth 6: every branch decides, no violation. *)
  let r = Mc.run (config ~n:2 ()) in
  check_bool "verified" true (r.Mc.verdict = Mc.Verified);
  check_bool "no violation" true (r.Mc.violation = None);
  check_bool "no non-deciding branch" true (r.Mc.non_deciding = None);
  check_bool "terminal branches exist" true (r.Mc.stats.Explore.terminal_branches > 0);
  check_int "no branch cut by the bound" 0 r.Mc.stats.Explore.bound_branches

let test_es_n3_verified_with_reduction () =
  let r = Mc.run (config ~n:3 ()) in
  check_bool "verified" true (r.Mc.verdict = Mc.Verified);
  check_bool "symmetry actually reduces" true (Mc.reduction_factor r > 1.0);
  check_bool "dedup hits counted" true (r.Mc.stats.Explore.dedup_hits > 0);
  (* Pinned from the PR 4 string-key canonicalizer: the digest-based keys
     must merge exactly the same orbits, no more (soundness), no fewer
     (the reduction claim). *)
  check_int "raw states" 62 r.Mc.stats.Explore.raw_states;
  check_int "canonical states" 26 r.Mc.stats.Explore.canonical_states

(* The PR 4 baseline reduction factor for the weak set at n=3 is 31.3x
   (33116 raw / 1058 canonical); the incremental digest keys must
   reproduce it exactly. *)
let test_ws_n3_reduction_pinned () =
  let r = Mc.run (config ~algo:Mc.Ms_weakset ~env:G.Env.Ms ~n:3 ~rounds:4 ()) in
  check_bool "verified or bounded" true (r.Mc.verdict <> Mc.Violation);
  check_int "raw states" 33116 r.Mc.stats.Explore.raw_states;
  check_int "canonical states" 1058 r.Mc.stats.Explore.canonical_states;
  check_bool "factor stays 31x" true
    (let f = Mc.reduction_factor r in
     f > 31.0 && f < 32.0)

let test_es_crash_budget_verified () =
  (* Crash schedules are enumerated outside the exploration: budget 1 at
     n=2, depth 6 is 1 (no crash) + 2 pids x 6 rounds = 13 schedules. *)
  let r = Mc.run (config ~n:2 ~crashes:1 ()) in
  check_int "schedules" 13 r.Mc.schedules;
  check_bool "verified" true (r.Mc.verdict = Mc.Verified)

let test_ess_verified () =
  let r =
    Mc.run (config ~algo:Mc.Ess ~env:(G.Env.Ess { gst = 2 }) ~n:2 ~rounds:8 ())
  in
  check_bool "verified" true (r.Mc.verdict = Mc.Verified)

let test_ws_verified () =
  let r = Mc.run (config ~algo:Mc.Ms_weakset ~env:G.Env.Ms ~n:2 ~rounds:4 ()) in
  check_bool "verified" true (r.Mc.verdict = Mc.Verified);
  check_bool "weak-set reduction" true (Mc.reduction_factor r > 1.0)

(* --- the incremental canonical digest ----------------------------------------- *)

(* Property: after an arbitrary sequence of per-slot edits — refreshed
   through either the string path or the piecewise stream path, with
   branches taken via [copy] along the way — the maintained digest equals
   the from-scratch [full_key] over the current views. *)
let test_digest_incremental_matches_full () =
  let module Canon = Anon_mc.Canon in
  let module Rng = Anon_kernel.Rng in
  let rng = Rng.make 99 in
  let n = 5 in
  let views = Array.init n (fun p -> Printf.sprintf "view-%d" p) in
  let versions = Array.make n 0 in
  let refresh_all d =
    for p = 0 to n - 1 do
      if Rng.bool rng then
        Canon.Digest.refresh d ~slot:p ~version:versions.(p) (fun () -> views.(p))
      else
        Canon.Digest.refresh_stream d ~slot:p ~version:versions.(p) (fun st ->
            Canon.Digest.feed_string st views.(p))
    done
  in
  let d = ref (Canon.Digest.create ~n) in
  for step = 1 to 300 do
    let p = Rng.int rng n in
    views.(p) <-
      Printf.sprintf "v%d|%d|%s" p step
        (String.make (Rng.int rng 8) (Char.chr (97 + Rng.int rng 26)));
    versions.(p) <- versions.(p) + 1;
    if Rng.bool rng then d := Canon.Digest.copy !d;
    refresh_all !d;
    let round = step mod 7 and global = if step mod 3 = 0 then "g" else "" in
    Alcotest.(check string)
      (Printf.sprintf "digest = full rehash at step %d" step)
      (Canon.Digest.full_key ~round ~global ~views:(Array.to_list views))
      (Canon.Digest.key !d ~round ~global)
  done

(* --- bounded verdicts and their witnesses ------------------------------------- *)

let test_es_shallow_bounded_witness_replays () =
  (* Depth 2 is below ES's decision depth: the verdict is Bounded and the
     non-deciding witness must replay through the real runner to the same
     conclusion (a termination violation at the witness horizon). *)
  let r = Mc.run (config ~n:2 ~rounds:2 ()) in
  check_bool "bounded" true (r.Mc.verdict = Mc.Bounded);
  check_bool "no safety violation" true (r.Mc.violation = None);
  match r.Mc.witness with
  | None -> Alcotest.fail "expected a non-deciding witness"
  | Some w ->
    check_bool "replay reproduces non-decision" true (Witness.confirmed w);
    check_bool "replay reports a termination violation" true
      (List.exists
         (function G.Checker.Termination_violation _ -> true | _ -> false)
         w.Witness.replay_violations)

let test_ws_bounded_witness_blocked_add () =
  (* Depth 2 cuts the weak-set run before pending adds complete: bounded,
     with a witness whose replay shows no safety violation (a blocked add
     is a liveness artifact of the bound, not a bug). *)
  let r = Mc.run (config ~algo:Mc.Ms_weakset ~env:G.Env.Ms ~n:2 ~rounds:2 ()) in
  check_bool "bounded" true (r.Mc.verdict = Mc.Bounded);
  check_bool "blocked clients recorded" true
    (match r.Mc.non_deciding with
    | Some (_, _, b) -> b.Explore.b_blocked <> []
    | None -> false);
  match r.Mc.witness with
  | None -> Alcotest.fail "expected a bounded witness"
  | Some w -> check_bool "no safety violation on replay" true (not (Witness.confirmed w))

(* --- armed mode: the counterexample loop --------------------------------------- *)

let test_armed_counterexample_replays () =
  let r = Mc.run (config ~n:2 ~rounds:4 ~armed:true ()) in
  check_bool "violation found" true (r.Mc.verdict = Mc.Violation);
  let w =
    match r.Mc.witness with
    | Some w -> w
    | None -> Alcotest.fail "expected a witness"
  in
  check_bool "replay confirms" true (Witness.confirmed w);
  (* The witness goes through the PR-2 chaos repro format verbatim. *)
  let path = Filename.temp_file "anon_mc_repro" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Witness.write ~path w;
      match Ch.Fuzz.replay ~path with
      | Error e -> Alcotest.failf "replay failed: %s" e
      | Ok replayed ->
        check_bool "replay matches recorded verdict" true replayed.Ch.Fuzz.matches;
        check_bool "env violation reproduced" true
          (List.exists
             (function G.Checker.No_source _ -> true | _ -> false)
             replayed.Ch.Fuzz.actual))

(* --- determinism ---------------------------------------------------------------- *)

let test_jobs_deterministic () =
  (* Identical reports (verdict, counts, witness) at 1 and 4 workers. *)
  let run jobs = Mc.run (config ~n:3 ~crashes:1 ~rounds:5 ~jobs:(Some jobs) ()) in
  let j1 = Mc.report_json (run 1) and j4 = Mc.report_json (run 4) in
  check_bool "byte-identical reports" true
    (String.equal (Anon_obs.Json.to_string j1) (Anon_obs.Json.to_string j4))

let test_dfs_bfs_same_verdict () =
  let bfs = Mc.run (config ~n:2 ~search:Mc.Bfs ()) in
  let dfs = Mc.run (config ~n:2 ~search:Mc.Dfs ()) in
  check_bool "same verdict" true (bfs.Mc.verdict = dfs.Mc.verdict);
  check_int "same raw states" bfs.Mc.stats.Explore.raw_states
    dfs.Mc.stats.Explore.raw_states

(* --- the unguarded ablation ----------------------------------------------------- *)

let test_es_unguarded_safe_when_admissible () =
  (* The A2 agreement split needs an inadmissible (literal-model)
     schedule; over admissible ES schedules the unguarded variant
     verifies clean even with a crash budget. *)
  let r = Mc.run (config ~algo:Mc.Es_unguarded ~n:3 ~crashes:1 ()) in
  check_bool "verified" true (r.Mc.verdict = Mc.Verified)

let () =
  Alcotest.run "mc"
    [
      ( "verdicts",
        [
          Alcotest.test_case "ES n=2 verified" `Quick test_es_verified;
          Alcotest.test_case "ES n=3 verified, reduced" `Quick
            test_es_n3_verified_with_reduction;
          Alcotest.test_case "ES crash budget verified" `Quick
            test_es_crash_budget_verified;
          Alcotest.test_case "ESS n=2 verified" `Quick test_ess_verified;
          Alcotest.test_case "weak-set n=2 verified" `Quick test_ws_verified;
          Alcotest.test_case "weak-set n=3 reduction pinned at 31x" `Quick
            test_ws_n3_reduction_pinned;
          Alcotest.test_case "digest: incremental = full rehash" `Quick
            test_digest_incremental_matches_full;
        ] );
      ( "witnesses",
        [
          Alcotest.test_case "shallow ES bounded witness replays" `Quick
            test_es_shallow_bounded_witness_replays;
          Alcotest.test_case "weak-set blocked-add witness" `Quick
            test_ws_bounded_witness_blocked_add;
          Alcotest.test_case "armed counterexample replays" `Quick
            test_armed_counterexample_replays;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs_deterministic;
          Alcotest.test_case "dfs = bfs verdict" `Quick test_dfs_bfs_same_verdict;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "unguarded safe on admissible schedules" `Quick
            test_es_unguarded_safe_when_admissible;
        ] );
    ]
