(* Tests for the multi-shot consensus service (lib/rsm): workload
   validation discipline, the W=1/B=1 differential against one-shot
   Runner executions (the multiplexer adds no semantics), window
   independence, sharded jobs-equivalence of the load report, log
   contiguity under crash/churn stalls, and a fuzz-campaign smoke over
   dynamic-graph + churn load runs. *)

open Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module Rsm = Anon_rsm.Rsm
module Load = Anon_rsm.Load
module Workload = Anon_rsm.Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let rejects ~what f =
  match f () with
  | exception G.Config_error.Invalid_config _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_config" what

let workload ?(skew = 0.) ?(value_range = 16) ?(shards = 1) ?(seed = 42)
    ~proposals ~rate () =
  Workload.make ~skew ~value_range ~shards ~proposals ~rate ~seed ()

let no_faults = (G.Crash.none ~n:0, G.Churn.none ~n:0)

let config ?(n = 3) ?(window = 1) ?(batch = 1) ?(horizon = 400) ?(seed = 42)
    ?faults adversary =
  let crash, churn = Option.value ~default:no_faults faults in
  {
    Rsm.n;
    window;
    batch;
    horizon;
    seed;
    crash = (if G.Crash.n crash = 0 then G.Crash.none ~n else crash);
    churn = (if G.Churn.n churn = 0 then G.Churn.none ~n else churn);
    adversary;
  }

let es_factory ?(gst = 4) () _instance = G.Adversary.es ~gst ()

(* --- validation -------------------------------------------------------------- *)

let test_workload_validation () =
  rejects ~what:"nan rate" (fun () ->
      workload ~proposals:10 ~rate:Float.nan ());
  rejects ~what:"negative rate" (fun () -> workload ~proposals:10 ~rate:(-1.) ());
  rejects ~what:"zero rate" (fun () -> workload ~proposals:10 ~rate:0. ());
  rejects ~what:"infinite rate" (fun () ->
      workload ~proposals:10 ~rate:Float.infinity ());
  rejects ~what:"nan skew" (fun () ->
      workload ~skew:Float.nan ~proposals:10 ~rate:1. ());
  rejects ~what:"skew > 1" (fun () ->
      workload ~skew:1.5 ~proposals:10 ~rate:1. ());
  rejects ~what:"skew < 0" (fun () ->
      workload ~skew:(-0.1) ~proposals:10 ~rate:1. ());
  rejects ~what:"no proposals" (fun () -> workload ~proposals:0 ~rate:1. ());
  rejects ~what:"zero shards" (fun () ->
      workload ~shards:0 ~proposals:10 ~rate:1. ());
  rejects ~what:"empty value range" (fun () ->
      workload ~value_range:0 ~proposals:10 ~rate:1. ());
  (* Boundary skews are legal. *)
  ignore (workload ~skew:0. ~proposals:1 ~rate:1. ());
  ignore (workload ~skew:1. ~proposals:1 ~rate:1. ())

let test_rsm_validation () =
  let ok = config (es_factory ()) in
  Rsm.validate ok;
  rejects ~what:"zero window" (fun () -> Rsm.validate { ok with window = 0 });
  rejects ~what:"zero batch" (fun () -> Rsm.validate { ok with batch = 0 });
  rejects ~what:"batch > window" (fun () ->
      Rsm.validate { ok with window = 2; batch = 3 });
  rejects ~what:"zero horizon" (fun () -> Rsm.validate { ok with horizon = 0 });
  rejects ~what:"n < 1" (fun () -> Rsm.validate { ok with n = 0 });
  rejects ~what:"crash size mismatch" (fun () ->
      Rsm.validate { ok with crash = G.Crash.none ~n:5 });
  rejects ~what:"churn size mismatch" (fun () ->
      Rsm.validate { ok with churn = G.Churn.none ~n:5 });
  rejects ~what:"crash+churn overlap" (fun () ->
      Rsm.validate
        {
          ok with
          crash =
            G.Crash.of_events ~n:3
              [ { pid = 1; round = 2; broadcast = G.Crash.Silent } ];
          churn = G.Churn.of_events ~n:3 [ { pid = 1; leave = 3; rejoin = None } ];
        })

(* --- workload stream --------------------------------------------------------- *)

let test_workload_stream () =
  let w = workload ~shards:3 ~proposals:20 ~rate:2.5 () in
  (* Shards partition the id space; arrivals and values are pure in id. *)
  let all =
    List.concat_map (fun s -> Workload.shard_proposals w s) [ 0; 1; 2 ]
    |> List.sort (fun a b -> compare a.Workload.id b.Workload.id)
  in
  check_int "partition covers all ids" 20 (List.length all);
  List.iteri
    (fun j (p : Workload.proposal) ->
      check_int "ids dense" j p.id;
      check_int "arrival pure" (Workload.arrival w j) p.arrival;
      check_int "value pure" (Workload.value w j) p.value;
      check_int "round-robin shard" (j mod 3) (Workload.shard_of w j))
    all;
  check_int "open-loop arrival" 1 (Workload.arrival w 0);
  check_int "open-loop arrival j=5" 3 (Workload.arrival w 5);
  let hot = workload ~skew:1. ~proposals:50 ~rate:1. () in
  List.iter
    (fun (p : Workload.proposal) ->
      check_int "skew 1 pins the hot value" hot.Workload.hot_value p.value)
    (Workload.shard_proposals hot 0)

(* --- differential: W=1, B=1 multiplexing is exactly the one-shot runner ------ *)

let differential (module A : G.Intf.ALGORITHM) ~make_adversary ~gst () =
  let module M = Rsm.Make (A) in
  let module R = G.Runner.Make (A) in
  let k = 6 and n = 3 and seed = 77 in
  let w = workload ~seed ~value_range:9 ~proposals:k ~rate:1000. () in
  let cfg = config ~n ~seed (fun _ -> make_adversary ~gst) in
  let out = M.run cfg ~proposals:(Workload.shard_proposals w 0) in
  check_int "one instance per proposal" k (List.length out.Rsm.instances);
  check_bool "all decided" true (out.Rsm.commit = k && out.Rsm.stalled = 0);
  List.iter
    (fun (ir : Rsm.instance_result) ->
      let v = Workload.value w ir.Rsm.first_proposal in
      let one_shot =
        R.run
          (G.Runner.default_config
             ~seed:(Rsm.instance_seed ~seed ~instance:ir.Rsm.instance)
             ~inputs:(List.init n (fun _ -> v))
             ~crash:(G.Crash.none ~n) (make_adversary ~gst))
      in
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "instance %d decisions = one-shot runner" ir.Rsm.instance)
        one_shot.G.Runner.decisions ir.Rsm.decisions;
      check_bool "committed value is the one-shot decision" true
        (match (ir.Rsm.value, one_shot.G.Runner.decisions) with
        | Some v', (_, _, v0) :: _ -> v' = v0
        | _ -> false))
    out.Rsm.instances

let test_differential_es () =
  differential
    (module C.Es_consensus)
    ~make_adversary:(fun ~gst -> G.Adversary.es ~gst ())
    ~gst:4 ()

let test_differential_ess () =
  differential
    (module C.Ess_consensus)
    ~make_adversary:(fun ~gst -> G.Adversary.ess ~gst ())
    ~gst:4 ()

(* At batch 1 every process proposes the proposal's value, so validity pins
   the log to the workload stream itself — and the window size cannot
   change any committed value (instances are seed-isolated). *)
let test_window_independence_b1 () =
  let module M = Rsm.Make (C.Es_consensus) in
  let w = workload ~seed:5 ~proposals:12 ~rate:3. () in
  let proposals = Workload.shard_proposals w 0 in
  let log cfg =
    let out = M.run cfg ~proposals in
    check_bool "agreement" true out.Rsm.agreement_ok;
    check_bool "validity" true out.Rsm.validity_ok;
    check_int "everything commits" 12 out.Rsm.committed_proposals;
    List.map
      (fun (ir : Rsm.instance_result) -> Option.get ir.Rsm.value)
      out.Rsm.instances
  in
  let expected = List.map (fun (p : Workload.proposal) -> p.value) proposals in
  let log1 = log (config ~seed:5 ~window:1 (es_factory ())) in
  let log4 = log (config ~seed:5 ~window:4 (es_factory ())) in
  Alcotest.(check (list int)) "B=1 log is the proposal stream" expected log1;
  Alcotest.(check (list int)) "window does not change the log" log1 log4

(* --- sharded load: byte-identical reports at any jobs ------------------------ *)

let load_report ~jobs =
  let module L = Load.Make (C.Es_consensus) in
  let w = workload ~seed:11 ~skew:0.3 ~shards:4 ~proposals:600 ~rate:20. () in
  L.run ~jobs ~env:"es:4" ~n:3 ~window:8 ~batch:4 ~horizon:2000
    ~adversary:(fun ~shard:_ ~instance:_ -> G.Adversary.es ~gst:4 ())
    w

let test_jobs_equivalence () =
  let doc r = Anon_obs.Json.to_string (Load.to_json r) in
  let r1 = load_report ~jobs:1 in
  check_bool "agreement" true r1.Load.agreement_ok;
  check_bool "validity" true r1.Load.validity_ok;
  check_int "all proposals decided" 600 r1.Load.decided;
  let d1 = doc r1 in
  check_string "jobs 2 = jobs 1" d1 (doc (load_report ~jobs:2));
  check_string "jobs 4 = jobs 1" d1 (doc (load_report ~jobs:4));
  check_bool "p99 covers p50" true (r1.Load.p99_rounds >= r1.Load.p50_rounds)

(* --- faults: stalls keep the log contiguous ---------------------------------- *)

let commit_is_contiguous (out : Rsm.outcome) =
  let rec prefix = function
    | { Rsm.value = Some _; arrivals; _ } :: rest ->
      let c, p = prefix rest in
      (c + 1, p + List.length arrivals)
    | _ -> (0, 0)
  in
  let c, p = prefix out.Rsm.instances in
  check_int "commit = contiguous decided prefix" c out.Rsm.commit;
  check_int "committed proposals follow the prefix" p out.Rsm.committed_proposals

let test_crash_all_stalls () =
  let module M = Rsm.Make (C.Es_consensus) in
  let n = 2 in
  let crash =
    G.Crash.of_events ~n
      [
        { pid = 0; round = 2; broadcast = G.Crash.Silent };
        { pid = 1; round = 2; broadcast = G.Crash.Silent };
      ]
  in
  let w = workload ~proposals:4 ~rate:1000. () in
  let cfg =
    config ~n ~window:2 ~faults:(crash, G.Churn.none ~n) (es_factory ())
  in
  let out = M.run cfg ~proposals:(Workload.shard_proposals w 0) in
  check_int "nothing commits" 0 out.Rsm.commit;
  check_bool "every instance stalls" true
    (out.Rsm.stalled = List.length out.Rsm.instances);
  check_bool "terminates before the horizon" true (out.Rsm.rounds < cfg.Rsm.horizon);
  check_bool "agreement vacuous" true out.Rsm.agreement_ok;
  commit_is_contiguous out

let test_crash_subset_decides () =
  let module M = Rsm.Make (C.Es_consensus) in
  let n = 4 in
  let crash =
    G.Crash.of_events ~n
      [ { pid = 3; round = 3; broadcast = G.Crash.Broadcast_subset } ]
  in
  let w = workload ~seed:9 ~proposals:10 ~rate:5. () in
  let cfg =
    config ~n ~window:3 ~batch:2 ~faults:(crash, G.Churn.none ~n) (es_factory ())
  in
  let out = M.run cfg ~proposals:(Workload.shard_proposals w 0) in
  check_bool "agreement under a crasher" true out.Rsm.agreement_ok;
  check_bool "validity under a crasher" true out.Rsm.validity_ok;
  check_int "all proposals decided" 10 out.Rsm.decided_proposals;
  check_int "log complete" (List.length out.Rsm.instances) out.Rsm.commit;
  commit_is_contiguous out

(* A full-population absence window stalls exactly the instances opened
   inside it; the log hole freezes the commit pointer while later
   instances still decide. *)
let test_churn_hole_blocks_commit () =
  let module M = Rsm.Make (C.Es_consensus) in
  let n = 2 in
  let churn =
    G.Churn.of_events ~n
      [
        { pid = 0; leave = 2; rejoin = Some 4 };
        { pid = 1; leave = 2; rejoin = Some 4 };
      ]
  in
  let w = workload ~proposals:4 ~rate:1000. () in
  let cfg = config ~n ~faults:(G.Crash.none ~n, churn) (es_factory ()) in
  let out = M.run cfg ~proposals:(Workload.shard_proposals w 0) in
  check_bool "early instances stall" true (out.Rsm.stalled > 0);
  check_bool "late instances decide" true (out.Rsm.decided_proposals > 0);
  check_int "the hole freezes the commit pointer" 0 out.Rsm.commit;
  check_bool "agreement" true out.Rsm.agreement_ok;
  check_bool "validity" true out.Rsm.validity_ok;
  commit_is_contiguous out

(* --- fuzz smoke: dynamic graphs + churn through the load path ---------------- *)

let test_fuzz_dynamic_churn_smoke () =
  let module L = Load.Make (C.Ess_consensus) in
  let rng = Rng.make 2026 in
  for case = 1 to 8 do
    let n = 3 + Rng.int rng 3 in
    let stability = 1 + Rng.int rng 3 in
    let shards = 1 + Rng.int rng 2 in
    let churners = Rng.int rng (max 1 (n - 1)) in
    let seed = 1000 + (case * 17) in
    let churn ~shard =
      G.Churn.random ~n ~churners ~max_round:12 (Rng.make (seed + shard))
    in
    let w =
      Workload.make ~shards ~value_range:5
        ~skew:(Rng.float rng 1.)
        ~proposals:(40 + Rng.int rng 40)
        ~rate:(1. +. Rng.float rng 20.)
        ~seed ()
    in
    let r =
      L.run ~jobs:1 ~env:"dynamic" ~n ~window:4 ~batch:2 ~horizon:3000 ~churn
        ~adversary:(fun ~shard:_ ~instance:_ ->
          G.Adversary.dynamic ~stability ~rooted:true ())
        w
    in
    check_bool
      (Printf.sprintf "case %d: agreement (n=%d stability=%d churners=%d)" case
         n stability churners)
      true r.Load.agreement_ok;
    check_bool (Printf.sprintf "case %d: validity" case) true r.Load.validity_ok;
    check_bool (Printf.sprintf "case %d: commit <= decided" case) true
      (r.Load.committed <= r.Load.decided);
    check_bool (Printf.sprintf "case %d: progress" case) true (r.Load.decided > 0)
  done

(* --- report plumbing --------------------------------------------------------- *)

let test_report_json_shape () =
  let r = load_report ~jobs:1 in
  let j = Load.to_json r in
  let open Anon_obs.Json in
  check_bool "schema" true (member "schema" j = Some (String "anon-load/1"));
  check_bool "round-trips" true
    (match of_string (to_string j) with Ok j' -> equal j j' | Error _ -> false);
  let row = Load.row_json r in
  List.iter
    (fun k -> check_bool ("row has " ^ k) true (member k row <> None))
    [ "rate"; "proposals"; "throughput"; "p50_rounds"; "p99_rounds" ]

let () =
  Alcotest.run "rsm"
    [
      ( "validation",
        [
          Alcotest.test_case "workload params" `Quick test_workload_validation;
          Alcotest.test_case "rsm config" `Quick test_rsm_validation;
        ] );
      ( "workload",
        [ Alcotest.test_case "deterministic stream" `Quick test_workload_stream ] );
      ( "differential",
        [
          Alcotest.test_case "W=1 B=1 es = one-shot runner" `Quick
            test_differential_es;
          Alcotest.test_case "W=1 B=1 ess = one-shot runner" `Quick
            test_differential_ess;
          Alcotest.test_case "window independence at B=1" `Quick
            test_window_independence_b1;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "byte-identical at jobs 1/2/4" `Quick
            test_jobs_equivalence;
          Alcotest.test_case "report JSON round-trips" `Quick
            test_report_json_shape;
        ] );
      ( "faults",
        [
          Alcotest.test_case "full crash stalls, terminates" `Quick
            test_crash_all_stalls;
          Alcotest.test_case "crash subset still commits" `Quick
            test_crash_subset_decides;
          Alcotest.test_case "churn hole freezes commit" `Quick
            test_churn_hole_blocks_commit;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "dynamic+churn load smoke" `Quick
            test_fuzz_dynamic_churn_smoke;
        ] );
    ]
