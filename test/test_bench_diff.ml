(* Tests for the bench-regression gate: baseline parsing, row flattening,
   threshold semantics, the cross-core guard, and missing/added rows. *)

module B = Anon_harness.Bench_diff
module Json = Anon_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small anon-bench/2 document. [mutate] lets each test tweak values
   without re-stating the whole skeleton. *)
let doc ?(label = "base") ?(cores = 4) ?(t1 = 2.0) ?(t4 = 0.8)
    ?(pool_ns = 5000.0) ?(states_per_sec = 120000.0) ?(micro_ns = Some 310.0) () =
  let micro =
    match micro_ns with
    | Some ns ->
      [ Json.Obj [ ("name", Json.String "history_append"); ("ns", Json.Float ns) ] ]
    | None -> []
  in
  Json.Obj
    [
      ("schema", Json.String "anon-bench/2");
      ("label", Json.String label);
      ("git_revision", Json.String "deadbeefcafe0123");
      ("cores", Json.Int cores);
      ("jobs", Json.Int 2);
      ( "experiments",
        Json.List
          [
            Json.Obj
              [
                ("id", Json.String "T1"); ("parallel_s", Json.Float t1);
                ("sequential_s", Json.Null);
              ];
            Json.Obj [ ("id", Json.String "T4"); ("parallel_s", Json.Float t4) ];
          ] );
      ( "pool",
        Json.List
          [
            Json.Obj
              [
                ("jobs", Json.Int 2); ("ns_per_run", Json.Float pool_ns);
                ("speedup", Json.Float 1.7);
              ];
          ] );
      ( "mc",
        Json.Obj
          [
            ("states", Json.Int 1000); ("seconds", Json.Float 0.5);
            ("states_per_sec", Json.Float states_per_sec);
          ] );
      ("micro", Json.List micro);
    ]

let baseline ?label ?cores ?t1 ?t4 ?pool_ns ?states_per_sec ?micro_ns path =
  match
    B.of_json ~path (doc ?label ?cores ?t1 ?t4 ?pool_ns ?states_per_sec ?micro_ns ())
  with
  | Ok b -> b
  | Error e -> Alcotest.failf "of_json: %s" e

let test_flatten () =
  let b = baseline "old.json" in
  let names = List.map (fun (m, _, _) -> m) b.B.rows in
  Alcotest.(check (list string)) "row names, document order"
    [
      "experiment/T1.parallel_s"; "experiment/T4.parallel_s";
      "pool/jobs=2.ns_per_run"; "mc.states_per_sec"; "micro/history_append.ns";
    ]
    names;
  check_int "cores" 4 b.B.cores;
  Alcotest.(check string) "label" "base" b.B.label;
  (* Directions: throughput is higher-better, everything else lower. *)
  List.iter
    (fun (m, _, dir) ->
      let want =
        if m = "mc.states_per_sec" then B.Higher_better else B.Lower_better
      in
      check_bool m true (dir = want))
    b.B.rows

(* A small anon-bench/3 document: the /2 sections plus [load] rows. *)
let doc_v3 ?(cores = 4) ?(throughput = 3.5) ?(p99 = 9.0) () =
  let load_row rate throughput p99 =
    Json.Obj
      [
        ("rate", Json.Float rate);
        ("proposals", Json.Int 1000);
        ("throughput", Json.Float throughput);
        ("p50_rounds", Json.Float 7.0);
        ("p99_rounds", Json.Float p99);
        ("p999_rounds", Json.Float (p99 +. 1.0));
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "anon-bench/3");
      ("label", Json.String "v3");
      ("git_revision", Json.String "deadbeefcafe0123");
      ("cores", Json.Int cores);
      ("jobs", Json.Int 2);
      ( "mc",
        Json.Obj
          [ ("states", Json.Int 1000); ("states_per_sec", Json.Float 120000.0) ] );
      ("load", Json.List [ load_row 2.0 2.0 8.0; load_row 8.0 throughput p99 ]);
    ]

let baseline_v3 ?cores ?throughput ?p99 path =
  match B.of_json ~path (doc_v3 ?cores ?throughput ?p99 ()) with
  | Ok b -> b
  | Error e -> Alcotest.failf "of_json (v3): %s" e

let test_v3_load_rows () =
  let b = baseline_v3 "v3.json" in
  Alcotest.(check (list string)) "v3 row names, document order"
    [
      "mc.states_per_sec"; "load/rate=2.throughput"; "load/rate=2.p99_rounds";
      "load/rate=8.throughput"; "load/rate=8.p99_rounds";
    ]
    (List.map (fun (m, _, _) -> m) b.B.rows);
  (* Directions: throughput higher-better, latency lower-better. *)
  List.iter
    (fun (m, _, dir) ->
      let want =
        if m = "load/rate=2.p99_rounds" || m = "load/rate=8.p99_rounds" then
          B.Lower_better
        else B.Higher_better
      in
      check_bool m true (dir = want))
    b.B.rows

let test_v3_diff_semantics () =
  (* Throughput collapse and latency blow-up both regress; a latency drop
     improves. *)
  let old_b = baseline_v3 "old.json" in
  let new_b = baseline_v3 ~throughput:1.0 ~p99:30.0 "new.json" in
  let r = B.diff ~threshold:20.0 ~old_b ~new_b () in
  Alcotest.(check (list string)) "load regressions"
    [ "load/rate=8.throughput"; "load/rate=8.p99_rounds" ]
    (List.map (fun (row : B.row) -> row.B.metric) (B.regressions r));
  let better = B.diff ~threshold:20.0 ~old_b ~new_b:(baseline_v3 ~p99:5.0 "b.json") () in
  check_bool "latency drop improves" true
    (List.exists
       (fun (row : B.row) -> row.B.metric = "load/rate=8.p99_rounds")
       (B.improvements better));
  (* Cross-core refusal applies to /3 baselines like any other. *)
  let r = B.diff ~old_b ~new_b:(baseline_v3 ~cores:8 "c.json") () in
  check_bool "v3 cross-core flagged" true r.B.cross_cores;
  (* A /2 and a /3 baseline still compare: shared rows diff, the load
     rows report as added. *)
  let r = B.diff ~old_b:(baseline "old2.json") ~new_b:old_b () in
  check_bool "mc row shared across schemas" true
    (List.exists (fun (row : B.row) -> row.B.metric = "mc.states_per_sec") r.B.rows);
  check_bool "load rows added, not regressions" true
    (List.mem "load/rate=2.throughput" r.B.added && B.regressions r = [])

let test_schema_rejected () =
  let bad schema =
    let j = Json.Obj [ ("schema", Json.String schema) ] in
    match B.of_json ~path:"x.json" j with
    | Ok _ -> Alcotest.failf "schema %S must be rejected" schema
    | Error _ -> ()
  in
  bad "anon-bench/1";
  bad "other";
  match B.of_json ~path:"x.json" (Json.Obj []) with
  | Ok _ -> Alcotest.fail "missing schema must be rejected"
  | Error _ -> ()

let test_no_change () =
  let b = baseline "a.json" in
  let r = B.diff ~old_b:b ~new_b:b () in
  check_int "all rows compared" 5 (List.length r.B.rows);
  check_int "no regressions" 0 (List.length (B.regressions r));
  check_int "no improvements" 0 (List.length (B.improvements r));
  check_bool "same cores" false r.B.cross_cores

let test_regression_detected () =
  let old_b = baseline ~label:"old" "old.json" in
  (* T4 slows down 50%; mc throughput halves; T1 improves 25%. *)
  let new_b =
    baseline ~label:"new" ~t1:1.5 ~t4:1.2 ~states_per_sec:60000.0 "new.json"
  in
  let r = B.diff ~threshold:20.0 ~old_b ~new_b () in
  let regs = List.map (fun row -> row.B.metric) (B.regressions r) in
  Alcotest.(check (list string)) "regressions"
    [ "experiment/T4.parallel_s"; "mc.states_per_sec" ]
    regs;
  let imps = List.map (fun row -> row.B.metric) (B.improvements r) in
  Alcotest.(check (list string)) "improvements" [ "experiment/T1.parallel_s" ] imps;
  (* A generous threshold silences everything. *)
  let r = B.diff ~threshold:120.0 ~old_b ~new_b () in
  check_int "wide threshold" 0 (List.length (B.regressions r))

let test_threshold_boundary () =
  (* Exactly-at-threshold is not a regression (strict >). 2.0 -> 2.5 is
     +25.0% exactly in binary floating point. *)
  let old_b = baseline ~t1:2.0 "old.json" in
  let new_b = baseline ~t1:2.5 "new.json" in
  let r = B.diff ~threshold:25.0 ~old_b ~new_b () in
  check_bool "exactly 25% is not a regression" true
    (List.for_all (fun row -> not row.B.regressed) r.B.rows);
  let r = B.diff ~threshold:24.0 ~old_b ~new_b () in
  check_int "just under threshold regresses" 1 (List.length (B.regressions r));
  match B.diff ~threshold:(-1.0) ~old_b ~new_b () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative threshold must raise"

let test_direction_sign () =
  (* Higher-better metrics regress on decrease, improve on increase. *)
  let old_b = baseline "old.json" in
  let faster = baseline ~states_per_sec:200000.0 "new.json" in
  let r = B.diff ~threshold:20.0 ~old_b ~new_b:faster () in
  let row =
    List.find (fun row -> row.B.metric = "mc.states_per_sec") r.B.rows
  in
  check_bool "throughput gain improves" true row.B.improved;
  check_bool "not regressed" false row.B.regressed;
  check_bool "delta positive" true (row.B.delta_pct > 0.0)

let test_cross_cores_flag () =
  let old_b = baseline ~cores:1 "old.json" in
  let new_b = baseline ~cores:8 "new.json" in
  let r = B.diff ~old_b ~new_b () in
  check_bool "cross-core comparison flagged" true r.B.cross_cores

let test_missing_and_added_rows () =
  let old_b = baseline "old.json" in
  (* NEW drops the micro row: warn-only, never a regression. *)
  let new_b = baseline ~micro_ns:None "new.json" in
  let r = B.diff ~old_b ~new_b () in
  Alcotest.(check (list string)) "missing rows" [ "micro/history_append.ns" ]
    r.B.missing;
  check_int "missing is not a regression" 0 (List.length (B.regressions r));
  check_int "remaining rows compared" 4 (List.length r.B.rows);
  (* Reversed, the extra row in NEW is reported as added. *)
  let r = B.diff ~old_b:new_b ~new_b:old_b () in
  Alcotest.(check (list string)) "added rows" [ "micro/history_append.ns" ] r.B.added

let test_null_rows_skipped () =
  (* sequential_s is null in the skeleton — it must not become a row, and
     a render of a real report must not raise. *)
  let b = baseline "a.json" in
  check_bool "null sequential_s skipped" true
    (not (List.exists (fun (m, _, _) -> m = "experiment/T1.sequential_s") b.B.rows));
  let r = B.diff ~old_b:b ~new_b:(baseline ~t4:2.0 "b.json") () in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  B.render ppf r;
  Format.pp_print_flush ppf ();
  let text = Buffer.contents buf in
  check_bool "render mentions REGRESSED" true
    (let re = "REGRESSED" in
     let rec find i =
       i + String.length re <= String.length text
       && (String.sub text i (String.length re) = re || find (i + 1))
     in
     find 0)

let test_load_missing_file () =
  match B.load ~path:"/nonexistent/bench.json" with
  | Ok _ -> Alcotest.fail "loading a missing file must error"
  | Error _ -> ()

let () =
  Alcotest.run "bench_diff"
    [
      ( "baseline",
        [
          Alcotest.test_case "flatten rows" `Quick test_flatten;
          Alcotest.test_case "v3 load rows" `Quick test_v3_load_rows;
          Alcotest.test_case "v3 diff semantics" `Quick test_v3_diff_semantics;
          Alcotest.test_case "schema rejected" `Quick test_schema_rejected;
          Alcotest.test_case "null rows skipped" `Quick test_null_rows_skipped;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
        ] );
      ( "diff",
        [
          Alcotest.test_case "no change" `Quick test_no_change;
          Alcotest.test_case "regression detected" `Quick test_regression_detected;
          Alcotest.test_case "threshold boundary" `Quick test_threshold_boundary;
          Alcotest.test_case "direction sign" `Quick test_direction_sign;
          Alcotest.test_case "cross cores" `Quick test_cross_cores_flag;
          Alcotest.test_case "missing/added rows" `Quick test_missing_and_added_rows;
        ] );
    ]
