(* Tests for the GIRAF substrate: crash schedules, mailboxes, adversaries,
   the runner's round/delivery semantics, and the trace checkers. *)

open Anon_kernel
module G = Anon_giraf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let pids = Alcotest.(check (list int))

(* --- Crash ------------------------------------------------------------------ *)

let ev pid round broadcast = { G.Crash.pid; round; broadcast }

let test_crash_none () =
  let c = G.Crash.none ~n:4 in
  pids "all correct" [ 0; 1; 2; 3 ] (G.Crash.correct c);
  check_int "no failures" 0 (G.Crash.failures c)

let test_crash_of_events () =
  let c = G.Crash.of_events ~n:4 [ ev 1 3 G.Crash.Silent; ev 3 1 G.Crash.Broadcast_all ] in
  pids "correct" [ 0; 2 ] (G.Crash.correct c);
  check_bool "p1 faulty" false (G.Crash.is_correct c 1);
  Alcotest.(check (option int)) "crash round" (Some 3) (G.Crash.crash_round c 1);
  Alcotest.(check (option int)) "no crash" None (G.Crash.crash_round c 0);
  check_int "crashing at 3" 1 (List.length (G.Crash.crashing_at c ~round:3))

let test_crash_validation () =
  Alcotest.check_raises "dup pid" (Invalid_argument "Crash.of_events: duplicate pid")
    (fun () ->
      ignore (G.Crash.of_events ~n:2 [ ev 0 1 G.Crash.Silent; ev 0 2 G.Crash.Silent ]));
  Alcotest.check_raises "pid range" (Invalid_argument "Crash.of_events: pid out of range")
    (fun () -> ignore (G.Crash.of_events ~n:2 [ ev 5 1 G.Crash.Silent ]));
  Alcotest.check_raises "round >= 1" (Invalid_argument "Crash.of_events: round must be >= 1")
    (fun () -> ignore (G.Crash.of_events ~n:2 [ ev 0 0 G.Crash.Silent ]))

let prop_crash_random =
  QCheck.Test.make ~name:"random schedule respects counts and rounds" ~count:100
    QCheck.(pair small_int (int_range 0 8))
    (fun (seed, failures) ->
      let rng = Rng.make seed in
      let c = G.Crash.random ~n:8 ~failures ~max_round:10 rng in
      G.Crash.failures c = failures
      && List.for_all
           (fun (e : G.Crash.event) -> e.round >= 1 && e.round <= 10)
           (G.Crash.events c))

(* --- Mailbox ----------------------------------------------------------------- *)

let make_mailbox () = G.Mailbox.create ~compare:String.compare ()

let test_mailbox_current_dedup () =
  let mb = make_mailbox () in
  G.Mailbox.schedule mb ~arrival:1 ~sent:1 "a";
  G.Mailbox.schedule mb ~arrival:1 ~sent:1 "a";
  G.Mailbox.schedule mb ~arrival:1 ~sent:1 "b";
  let fresh = G.Mailbox.drain mb ~upto:1 in
  check_int "all arrivals reported fresh" 3 (List.length fresh);
  Alcotest.(check (list string)) "current deduped and sorted" [ "a"; "b" ]
    (G.Mailbox.current mb ~round:1)

let test_mailbox_late_messages () =
  let mb = make_mailbox () in
  G.Mailbox.schedule mb ~arrival:3 ~sent:1 "late";
  Alcotest.(check (list string)) "nothing before drain" [] (G.Mailbox.current mb ~round:1);
  let fresh1 = G.Mailbox.drain mb ~upto:2 in
  check_int "not arrived yet" 0 (List.length fresh1);
  let fresh2 = G.Mailbox.drain mb ~upto:3 in
  Alcotest.(check (list (pair int string))) "late tagged with sent round" [ (1, "late") ] fresh2;
  Alcotest.(check (list string)) "merged into its round" [ "late" ]
    (G.Mailbox.current mb ~round:1)

let test_mailbox_drain_once () =
  let mb = make_mailbox () in
  G.Mailbox.schedule mb ~arrival:1 ~sent:1 "x";
  ignore (G.Mailbox.drain mb ~upto:1);
  check_int "second drain empty" 0 (List.length (G.Mailbox.drain mb ~upto:1))

(* --- Adversary ----------------------------------------------------------------- *)

let ctx ~round ~senders ~obligated ~correct ~alive =
  { G.Adversary.round; senders; obligated; correct; alive }

let all_pids = [ 0; 1; 2; 3 ]

let test_adversary_sync () =
  let plan =
    G.Adversary.plan (G.Adversary.sync ())
      (ctx ~round:5 ~senders:all_pids ~obligated:all_pids ~correct:all_pids
         ~alive:all_pids)
      (Rng.make 1)
  in
  check_int "every sender planned" 4 (List.length plan.deliveries);
  List.iter
    (fun (s, ds) ->
      check_int "covers others" 3 (List.length ds);
      List.iter
        (fun (d : G.Adversary.delivery) ->
          check_bool "timely" true (d.arrival = 5);
          check_bool "not self" true (d.receiver <> s))
        ds)
    plan.deliveries

let source_covers (plan : G.Adversary.plan) obligated =
  match plan.source with
  | None -> false
  | Some s ->
    let ds = Option.value ~default:[] (List.assoc_opt s plan.deliveries) in
    List.for_all
      (fun q ->
        q = s
        || List.exists
             (fun (d : G.Adversary.delivery) -> d.receiver = q && d.arrival = 5)
             ds)
      obligated

let test_adversary_ms_source () =
  let adv = G.Adversary.ms ~rotation:G.Adversary.Round_robin () in
  let plan =
    G.Adversary.plan adv
      (ctx ~round:5 ~senders:all_pids ~obligated:all_pids ~correct:all_pids
         ~alive:all_pids)
      (Rng.make 1)
  in
  check_bool "source covers obligated" true (source_covers plan all_pids)

let test_adversary_ms_rotation () =
  let adv = G.Adversary.ms ~rotation:G.Adversary.Round_robin () in
  let src round =
    (G.Adversary.plan adv
       (ctx ~round ~senders:all_pids ~obligated:all_pids ~correct:all_pids
          ~alive:all_pids)
       (Rng.make 1))
      .source
  in
  check_bool "rotates" true (src 1 <> src 2)

let test_adversary_source_is_correct_sender () =
  (* Sources must survive the round: candidates are correct senders. *)
  let adv = G.Adversary.ms ~rotation:G.Adversary.Random_source () in
  for round = 1 to 20 do
    let plan =
      G.Adversary.plan adv
        (ctx ~round ~senders:[ 0; 1; 2 ] ~obligated:[ 0; 1 ] ~correct:[ 0; 1 ]
           ~alive:[ 0; 1; 2 ])
        (Rng.make round)
    in
    match plan.source with
    | Some s -> check_bool "source correct" true (List.mem s [ 0; 1 ])
    | None -> Alcotest.fail "expected a source"
  done

let test_adversary_es_post_gst () =
  let adv = G.Adversary.es ~gst:10 () in
  let plan =
    G.Adversary.plan adv
      (ctx ~round:10 ~senders:all_pids ~obligated:all_pids ~correct:all_pids
         ~alive:all_pids)
      (Rng.make 1)
  in
  List.iter
    (fun (_, ds) ->
      List.iter
        (fun (d : G.Adversary.delivery) -> check_int "all timely post-gst" 10 d.arrival)
        ds)
    plan.deliveries

let test_adversary_blocking_alternates () =
  let adv = G.Adversary.es_blocking ~gst:100 () in
  let src round =
    (G.Adversary.plan adv
       (ctx ~round ~senders:all_pids ~obligated:all_pids ~correct:all_pids
          ~alive:all_pids)
       (Rng.make 1))
      .source
  in
  Alcotest.(check (option int)) "odd source" (Some 0) (src 1);
  Alcotest.(check (option int)) "even source" (Some 1) (src 2)

(* --- Runner: a probe algorithm that records its inboxes --------------------- *)

module Probe = struct
  let name = "probe"

  type msg = int (* the sender's input value: constant per process *)
  type state = { me : Value.t; log : (int * int list) list }

  let msg_compare = Int.compare
  let msg_size _ = 1
  let pp_msg = Format.pp_print_int
  let leader _ = None
  let initialize v = ({ me = v; log = [] }, v)

  (* Decide own value at round 4; the message is always the input value. *)
  let compute st ~round ~inbox:{ G.Intf.current; fresh = _ } =
    let st = { st with log = (round, current) :: st.log } in
    if round = 4 then (st, st.me, Some st.me) else (st, st.me, None)
end

module Probe_runner = G.Runner.Make (Probe)

let probe_config ?(inputs = [ 1; 2; 3 ]) ?(crash = G.Crash.none ~n:3)
    ?(adversary = G.Adversary.sync ()) ?(horizon = 20) () =
  G.Runner.default_config ~horizon ~seed:9 ~inputs ~crash adversary

let test_runner_rounds_and_decisions () =
  let out = Probe_runner.run (probe_config ()) in
  check_bool "all decided" true out.all_correct_decided;
  Alcotest.(check (option int)) "decision round" (Some 4) (G.Runner.decision_round out);
  check_int "three decisions" 3 (List.length out.decisions);
  List.iter
    (fun (p, r, v) ->
      check_int "own value" (p + 1) v;
      check_int "at 4" 4 r)
    out.decisions;
  check_int "rounds executed" 5 out.rounds_executed

let test_runner_inbox_contents () =
  let seen = ref [] in
  let observe ~pid ~round st =
    if round >= 1 then seen := (pid, round, st.Probe.log) :: !seen
  in
  ignore (Probe_runner.run ~observe (probe_config ()));
  (* Under sync every round-k inbox holds everybody's (distinct) values. *)
  check_bool "observations recorded" true (!seen <> []);
  List.iter
    (fun (_, round, log) ->
      match List.assoc_opt round log with
      | Some current -> Alcotest.(check (list int)) "full inbox" [ 1; 2; 3 ] current
      | None -> Alcotest.fail "round not logged")
    !seen

let silent_adversary () =
  G.Adversary.scripted ~name:"silent" ~env:G.Env.Async (fun ctx _ ->
      { G.Adversary.source = None;
        deliveries = List.map (fun p -> (p, [])) ctx.senders })

let test_runner_own_message_always_present () =
  (* Even under a fully silent adversary (no deliveries at all), each
     process sees its own message (Alg. 1 line 10). *)
  let ok = ref true in
  let observe ~pid ~round:_ st =
    match st.Probe.log with
    | (_, current) :: _ -> if current <> [ pid + 1 ] then ok := false
    | [] -> ()
  in
  ignore (Probe_runner.run ~observe (probe_config ~adversary:(silent_adversary ()) ()));
  check_bool "own message only" true !ok

let test_runner_crash_stops_process () =
  let crash = G.Crash.of_events ~n:3 [ ev 1 2 G.Crash.Silent ] in
  let out = Probe_runner.run (probe_config ~crash ()) in
  check_bool "correct still decide" true out.all_correct_decided;
  check_bool "p1 did not decide" true
    (not (List.exists (fun (p, _, _) -> p = 1) out.decisions));
  (* p1 sends round 1 normally and round 2 as its (silent) crash-round
     broadcast, then takes no more steps. *)
  let p1_sends =
    List.length
      (List.filter
         (fun (info : G.Trace.round_info) -> List.mem 1 info.senders)
         out.trace.rounds)
  in
  check_int "p1 sent rounds 1 and 2 only" 2 p1_sends;
  check_bool "p1 listed as crashing in round 2" true
    (List.exists
       (fun (info : G.Trace.round_info) -> info.round = 2 && List.mem 1 info.crashing)
       out.trace.rounds)

let test_runner_identical_messages_merge () =
  (* Two processes with the same input send identical messages: receivers
     must see ONE message (anonymity). *)
  let merged = ref true in
  let observe ~pid:_ ~round:_ st =
    match st.Probe.log with
    | (_, current) :: _ ->
      if List.length current <> List.length (List.sort_uniq Int.compare current) then
        merged := false
    | [] -> ()
  in
  let out = Probe_runner.run ~observe (probe_config ~inputs:[ 7; 7; 3 ] ()) in
  check_bool "deduped" true !merged;
  check_bool "decided" true out.all_correct_decided

let test_runner_horizon () =
  let module Never = G.Runner.Make (struct
    include Probe

    let compute st ~round ~inbox =
      let st, m, _ = compute st ~round ~inbox in
      (st, m, None)
  end) in
  let out = Never.run (probe_config ~adversary:(silent_adversary ()) ~horizon:17 ()) in
  check_int "runs to horizon" 17 out.rounds_executed;
  check_bool "nobody decided" true (out.decisions = [])

(* --- Config validation ----------------------------------------------------- *)

let invalid where what = G.Config_error.Invalid_config { G.Config_error.where; what }

let test_runner_config_validation () =
  Alcotest.check_raises "empty inputs"
    (invalid "Runner.default_config" "inputs must be non-empty") (fun () ->
      ignore (G.Runner.default_config ~inputs:[] ~crash:(G.Crash.none ~n:0)
                (G.Adversary.sync ())));
  Alcotest.check_raises "horizon < 1"
    (invalid "Runner.default_config" "horizon must be >= 1 (got 0)") (fun () ->
      ignore (G.Runner.default_config ~horizon:0 ~inputs:[ 1; 2 ]
                ~crash:(G.Crash.none ~n:2) (G.Adversary.sync ())));
  Alcotest.check_raises "crash size mismatch"
    (invalid "Runner.default_config"
       "inputs/crash size mismatch (3 inputs, crash schedule for 2)") (fun () ->
      ignore (G.Runner.default_config ~inputs:[ 1; 2; 3 ] ~crash:(G.Crash.none ~n:2)
                (G.Adversary.sync ())));
  (* [run] re-validates directly constructed configs. *)
  let bad =
    { (probe_config ()) with G.Runner.horizon = -5 }
  in
  Alcotest.check_raises "run validates too"
    (invalid "Runner.run" "horizon must be >= 1 (got -5)") (fun () ->
      ignore (Probe_runner.run bad))

let test_service_runner_config_validation () =
  let module W = G.Service_runner.Make (Anon_consensus.Weak_set_ms) in
  let config n crash horizon =
    {
      G.Service_runner.n;
      crash;
      churn = G.Churn.none ~n;
      adversary = G.Adversary.ms ();
      horizon;
      seed = 1;
    }
  in
  Alcotest.check_raises "n < 1" (invalid "Service_runner.run" "n must be >= 1")
    (fun () -> ignore (W.run (config 0 (G.Crash.none ~n:0) 10) ~workload:[]));
  Alcotest.check_raises "horizon < 1"
    (invalid "Service_runner.run" "horizon must be >= 1 (got 0)") (fun () ->
      ignore (W.run (config 2 (G.Crash.none ~n:2) 0) ~workload:[]));
  Alcotest.check_raises "crash size mismatch"
    (invalid "Service_runner.run"
       "crash schedule size mismatch (n = 3, crash schedule for 2)") (fun () ->
      ignore (W.run (config 3 (G.Crash.none ~n:2) 10) ~workload:[]))

(* --- Env / Trace / Dispatch ----------------------------------------------------- *)

let test_env_pp_and_gst () =
  Alcotest.(check string) "es" "ES(gst=7)" (G.Env.to_string (G.Env.Es { gst = 7 }));
  Alcotest.(check string) "ms" "MS" (G.Env.to_string G.Env.Ms);
  Alcotest.(check (option int)) "sync gst" (Some 1) (G.Env.gst G.Env.Sync);
  Alcotest.(check (option int)) "ms gst" None (G.Env.gst G.Env.Ms);
  check_bool "async needs no source" false (G.Env.requires_source G.Env.Async ~round:3);
  check_bool "ms needs a source" true (G.Env.requires_source G.Env.Ms ~round:3)

let test_trace_accessors () =
  let info =
    {
      G.Trace.round = 2;
      senders = [ 0; 1 ];
      crashing = [];
      source = Some 0;
      timely = [ (0, [ 1 ]) ];
      obligated = [ 0; 1 ];
      decided = [ (1, 9) ];
      msg_sizes = [ (0, 3) ];
    }
  in
  pids "timely_to" [ 1 ] (G.Trace.timely_to info 0);
  pids "timely_to absent" [] (G.Trace.timely_to info 1);
  let t =
    {
      G.Trace.n = 2;
      inputs = [| 9; 9 |];
      crash = G.Crash.none ~n:2;
      churn = G.Churn.none ~n:2;
      env = G.Env.Ms;
      rounds = [ info ];
    }
  in
  Alcotest.(check (list (triple int int int))) "decisions" [ (1, 2, 9) ]
    (G.Trace.decisions t);
  check_int "last round" 2 (G.Trace.last_round t);
  (* Rendering smoke: must not raise and must mention the round. *)
  let s = Format.asprintf "%a" G.Trace.pp t in
  check_bool "pp mentions decisions" true
    (String.length s > 0 && String.contains s '9')

let test_dispatch_crash_modes () =
  let deliveries = ref [] in
  let schedule ~receiver ~arrival ~sent:_ _msg =
    deliveries := (receiver, arrival) :: !deliveries
  in
  let run broadcast =
    deliveries := [];
    let stats =
      G.Dispatch.dispatch ~round:3
        ~outgoing:[ { G.Dispatch.sender = 0; msg = "m" } ]
        ~crashing_events:[ { G.Crash.pid = 0; round = 3; broadcast } ]
        ~eligible:(fun _ -> true)
        ~receivers:[ 0; 1; 2; 3 ]
        ~plan:{ G.Adversary.source = None; deliveries = [] }
        ~crash_rng:(Rng.make 1) ~schedule ()
    in
    (stats, List.filter (fun (r, _) -> r <> 0) !deliveries)
  in
  let _, silent = run G.Crash.Silent in
  check_int "silent reaches nobody" 0 (List.length silent);
  let _, all = run G.Crash.Broadcast_all in
  check_int "broadcast-all reaches everyone else" 3 (List.length all);
  let _, subset = run G.Crash.Broadcast_subset in
  check_bool "subset within others" true (List.length subset <= 3);
  (* Self-delivery always happens regardless of crash mode. *)
  check_bool "self delivery" true
    (List.exists (fun (r, a) -> r = 0 && a = 3) !deliveries)

let test_service_random_workload () =
  let rng = Rng.make 11 in
  let w =
    G.Service_runner.random_workload ~n:6 ~ops_per_client:5 ~max_start:20
      ~value_range:10_000 rng
  in
  check_int "six clients" 6 (List.length w);
  let adds =
    List.concat_map
      (fun (_, ops) ->
        List.filter_map
          (fun (_, op) ->
            match op with
            | G.Service_runner.Do_add v -> Some v
            | G.Service_runner.Do_get | G.Service_runner.Do_add_with _ -> None)
          ops)
      w
  in
  check_int "added values are globally distinct" (List.length adds)
    (List.length (List.sort_uniq Int.compare adds));
  List.iter
    (fun (_, ops) ->
      let starts = List.map fst ops in
      check_bool "scripts sorted by start round" true
        (List.sort Int.compare starts = starts))
    w

(* --- Checker ------------------------------------------------------------------ *)

let base_round ~round ~senders ~obligated ~timely =
  {
    G.Trace.round;
    senders;
    crashing = [];
    source = None;
    timely;
    obligated;
    decided = [];
    msg_sizes = [];
  }

let mk_trace ?(env = G.Env.Ms) ?(crash = G.Crash.none ~n:3) ~rounds () =
  {
    G.Trace.n = 3;
    inputs = [| 1; 2; 3 |];
    crash;
    churn = G.Churn.none ~n:3;
    env;
    rounds;
  }

let test_checker_ms_ok () =
  let r1 =
    base_round ~round:1 ~senders:[ 0; 1; 2 ] ~obligated:[ 0; 1; 2 ]
      ~timely:[ (0, [ 1; 2 ]) ]
  in
  check_int "no violation" 0
    (List.length (G.Checker.check_env (mk_trace ~rounds:[ r1 ] ())))

let test_checker_ms_no_source () =
  let r1 =
    base_round ~round:1 ~senders:[ 0; 1; 2 ] ~obligated:[ 0; 1; 2 ]
      ~timely:[ (0, [ 1 ]); (1, [ 0 ]) ]
  in
  check_int "violation" 1
    (List.length (G.Checker.check_env (mk_trace ~rounds:[ r1 ] ())))

let test_checker_ms_faulty_source_ok () =
  (* A per-round source need not be correct — only present and covering. *)
  let crash = G.Crash.of_events ~n:3 [ ev 0 5 G.Crash.Silent ] in
  let r1 =
    base_round ~round:1 ~senders:[ 0; 1; 2 ] ~obligated:[ 1; 2 ]
      ~timely:[ (0, [ 1; 2 ]) ]
  in
  check_int "faulty source accepted" 0
    (List.length (G.Checker.check_env (mk_trace ~crash ~rounds:[ r1 ] ())))

let test_checker_es_post_gst () =
  let pre =
    base_round ~round:1 ~senders:[ 0; 1; 2 ] ~obligated:[ 0; 1; 2 ]
      ~timely:[ (0, [ 1; 2 ]) ]
  in
  let post_bad =
    base_round ~round:2 ~senders:[ 0; 1; 2 ] ~obligated:[ 0; 1; 2 ]
      ~timely:[ (0, [ 1; 2 ]) ]
  in
  let vs =
    G.Checker.check_env
      (mk_trace ~env:(G.Env.Es { gst = 2 }) ~rounds:[ pre; post_bad ] ())
  in
  (* p1 and p2 are correct senders but not timely to everybody. *)
  check_int "two lagging senders flagged" 2 (List.length vs)

let test_checker_ess_handover () =
  (* The stable source may change only when the previous one halted. *)
  let r k s ~senders =
    base_round ~round:k ~senders ~obligated:senders
      ~timely:[ (s, List.filter (fun q -> q <> s) senders) ]
  in
  let ok =
    [ r 1 0 ~senders:[ 0; 1; 2 ]; r 2 0 ~senders:[ 0; 1; 2 ]; r 3 1 ~senders:[ 1; 2 ] ]
  in
  check_int "handover after halt ok" 0
    (List.length
       (G.Checker.check_env (mk_trace ~env:(G.Env.Ess { gst = 1 }) ~rounds:ok ())));
  let bad = [ r 1 0 ~senders:[ 0; 1; 2 ]; r 2 1 ~senders:[ 0; 1; 2 ] ] in
  check_int "change while alive flagged" 1
    (List.length
       (G.Checker.check_env (mk_trace ~env:(G.Env.Ess { gst = 1 }) ~rounds:bad ())))

let decided_round ~round ~decided =
  { (base_round ~round ~senders:[] ~obligated:[] ~timely:[]) with G.Trace.decided }

let test_checker_consensus () =
  let tr = mk_trace ~rounds:[ decided_round ~round:4 ~decided:[ (0, 1); (1, 2) ] ] () in
  let vs = G.Checker.check_consensus ~expect_termination:false tr in
  check_int "agreement violation" 1 (List.length vs);
  let tr = mk_trace ~rounds:[ decided_round ~round:4 ~decided:[ (0, 99) ] ] () in
  let vs = G.Checker.check_consensus ~expect_termination:false tr in
  check_int "validity violation" 1 (List.length vs);
  let tr = mk_trace ~rounds:[ decided_round ~round:4 ~decided:[ (0, 1) ] ] () in
  let vs = G.Checker.check_consensus ~expect_termination:true tr in
  check_int "termination violation" 1 (List.length vs)

let test_checker_weak_set () =
  let ops =
    [
      G.Checker.Ws_add
        { add_client = 0; add_value = 5; add_invoked = 1; add_completed = Some 3 };
      G.Checker.Ws_get
        { get_client = 1; get_result = Value.Set.empty; get_invoked = 5; get_completed = 5 };
    ]
  in
  check_int "lost add" 1 (List.length (G.Checker.check_weak_set ops));
  check_int "faulty client excused" 0
    (List.length (G.Checker.check_weak_set ~correct:[ 0 ] ops));
  let phantom =
    [
      G.Checker.Ws_get
        {
          get_client = 1;
          get_result = Value.Set.singleton 9;
          get_invoked = 5;
          get_completed = 5;
        };
    ]
  in
  check_int "phantom value" 1 (List.length (G.Checker.check_weak_set phantom))

(* --- Negative checker tests: exact violation constructors -------------------- *)

let test_checker_exact_agreement () =
  (* Hand-built trace with a seeded disagreement: the checker must name the
     exact pair and values, not merely count a violation. *)
  let tr = mk_trace ~rounds:[ decided_round ~round:4 ~decided:[ (0, 1); (1, 2) ] ] () in
  match G.Checker.check_consensus ~expect_termination:false tr with
  | [ G.Checker.Agreement_violation { p1 = 0; v1 = 1; p2 = 1; v2 = 2 } ] -> ()
  | vs ->
    Alcotest.failf "expected Agreement_violation{p0:1 vs p1:2}, got [%s]"
      (String.concat "; "
         (List.map (Format.asprintf "%a" G.Checker.pp_violation) vs))

let test_checker_exact_no_source () =
  (* Round 2 has senders but nobody's timely set covers the obligated
     processes: exactly [No_source { round = 2 }]. *)
  let ok =
    base_round ~round:1 ~senders:[ 0; 1; 2 ] ~obligated:[ 0; 1; 2 ]
      ~timely:[ (1, [ 0; 2 ]) ]
  in
  let sourceless =
    base_round ~round:2 ~senders:[ 0; 1; 2 ] ~obligated:[ 0; 1; 2 ]
      ~timely:[ (0, [ 1 ]); (2, [ 1 ]) ]
  in
  match G.Checker.check_env (mk_trace ~rounds:[ ok; sourceless ] ()) with
  | [ G.Checker.No_source { round = 2 } ] -> ()
  | vs ->
    Alcotest.failf "expected No_source{round=2}, got [%s]"
      (String.concat "; "
         (List.map (Format.asprintf "%a" G.Checker.pp_violation) vs))

let test_checker_exact_lost_add () =
  (* An add completed at time 3 that a later correct get misses must be
     reported as exactly that lost add. *)
  let ops =
    [
      G.Checker.Ws_add
        { add_client = 0; add_value = 7; add_invoked = 1; add_completed = Some 3 };
      G.Checker.Ws_get
        {
          get_client = 2;
          get_result = Value.Set.empty;
          get_invoked = 6;
          get_completed = 8;
        };
    ]
  in
  match G.Checker.check_weak_set ~correct:[ 0; 1; 2 ] ops with
  | [ G.Checker.Weak_set_lost_add { value = 7; get_client = 2; get_invoked = 6 } ] -> ()
  | vs ->
    Alcotest.failf "expected Weak_set_lost_add{7, client 2, at 6}, got [%s]"
      (String.concat "; "
         (List.map (Format.asprintf "%a" G.Checker.pp_violation) vs))

(* --- Property: every built-in adversary honours its own Env.t ----------------- *)

(* Feed each adversary 200 rounds of contexts from a random crash schedule
   and validate the emitted plans directly against [Checker.check_env] on
   the reconstructed trace — the adversaries and the checker are
   independent implementations of §2.3, so this cross-checks both. *)
let test_adversaries_satisfy_own_env () =
  let n = 5 in
  let gst = 50 in
  let noises = [ 0.0; 0.3 ] in
  let rotations =
    [ G.Adversary.Round_robin; G.Adversary.Random_source; G.Adversary.Pinned 0 ]
  in
  let adversaries =
    [ G.Adversary.sync (); G.Adversary.es_blocking ~gst ();
      G.Adversary.ess_blocking ~gst () ]
    @ List.concat_map
        (fun noise ->
          G.Adversary.es ~gst ~noise ()
          :: List.concat_map
               (fun rotation ->
                 [ G.Adversary.ms ~rotation ~noise ();
                   G.Adversary.ess ~gst ~rotation ~noise () ])
               rotations)
        noises
  in
  List.iteri
    (fun i adv ->
      let rng = Rng.make (7000 + i) in
      (* Crashes only on pids >= 1, so [Pinned 0] stays a correct source. *)
      let failures = Rng.int_in rng 1 (n - 2) in
      let crash_events =
        Rng.shuffle rng (List.init (n - 1) (fun p -> p + 1))
        |> List.filteri (fun j _ -> j < failures)
        |> List.map (fun pid ->
               { G.Crash.pid; round = Rng.int_in rng 1 150;
                 broadcast = G.Crash.Broadcast_all })
      in
      let crash = G.Crash.of_events ~n crash_events in
      let correct = G.Crash.correct crash in
      let rounds =
        List.init 200 (fun idx ->
            let round = idx + 1 in
            let live =
              List.filter
                (fun p ->
                  match G.Crash.crash_round crash p with
                  | None -> true
                  | Some r -> r > round)
                (List.init n Fun.id)
            in
            let c = ctx ~round ~senders:live ~obligated:live ~correct ~alive:live in
            let plan = G.Adversary.plan adv c rng in
            List.iter
              (fun (_, ds) ->
                List.iter
                  (fun (d : G.Adversary.delivery) ->
                    if d.arrival < round then
                      Alcotest.failf "%s: arrival %d before round %d"
                        (G.Adversary.name adv) d.arrival round)
                  ds)
              plan.deliveries;
            let timely =
              List.map
                (fun (s, ds) ->
                  ( s,
                    List.filter_map
                      (fun (d : G.Adversary.delivery) ->
                        if d.arrival = round then Some d.receiver else None)
                      ds ))
                plan.deliveries
            in
            {
              G.Trace.round;
              senders = live;
              crashing = [];
              source = plan.source;
              timely;
              obligated = live;
              decided = [];
              msg_sizes = [];
            })
      in
      let trace =
        {
          G.Trace.n;
          inputs = Array.make n 1;
          crash;
          churn = G.Churn.none ~n;
          env = G.Adversary.env adv;
          rounds;
        }
      in
      match G.Checker.check_env trace with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "%s violates its own %s: %s" (G.Adversary.name adv)
          (G.Env.to_string (G.Adversary.env adv))
          (Format.asprintf "%a" G.Checker.pp_violation v))
    adversaries

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "giraf"
    [
      ( "crash",
        [
          Alcotest.test_case "none" `Quick test_crash_none;
          Alcotest.test_case "of_events" `Quick test_crash_of_events;
          Alcotest.test_case "validation" `Quick test_crash_validation;
          qc prop_crash_random;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "current dedup" `Quick test_mailbox_current_dedup;
          Alcotest.test_case "late messages" `Quick test_mailbox_late_messages;
          Alcotest.test_case "drain once" `Quick test_mailbox_drain_once;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "sync" `Quick test_adversary_sync;
          Alcotest.test_case "ms source" `Quick test_adversary_ms_source;
          Alcotest.test_case "ms rotation" `Quick test_adversary_ms_rotation;
          Alcotest.test_case "source is correct sender" `Quick
            test_adversary_source_is_correct_sender;
          Alcotest.test_case "es post gst" `Quick test_adversary_es_post_gst;
          Alcotest.test_case "blocking alternates" `Quick
            test_adversary_blocking_alternates;
        ] );
      ( "runner",
        [
          Alcotest.test_case "rounds and decisions" `Quick
            test_runner_rounds_and_decisions;
          Alcotest.test_case "inbox contents" `Quick test_runner_inbox_contents;
          Alcotest.test_case "own message" `Quick test_runner_own_message_always_present;
          Alcotest.test_case "crash stops process" `Quick test_runner_crash_stops_process;
          Alcotest.test_case "identical messages merge" `Quick
            test_runner_identical_messages_merge;
          Alcotest.test_case "horizon" `Quick test_runner_horizon;
        ] );
      ( "env-trace-dispatch",
        [
          Alcotest.test_case "env pp/gst" `Quick test_env_pp_and_gst;
          Alcotest.test_case "trace accessors" `Quick test_trace_accessors;
          Alcotest.test_case "dispatch crash modes" `Quick test_dispatch_crash_modes;
          Alcotest.test_case "random workload" `Quick test_service_random_workload;
        ] );
      ( "checker",
        [
          Alcotest.test_case "ms ok" `Quick test_checker_ms_ok;
          Alcotest.test_case "ms no source" `Quick test_checker_ms_no_source;
          Alcotest.test_case "faulty source ok" `Quick test_checker_ms_faulty_source_ok;
          Alcotest.test_case "es post gst" `Quick test_checker_es_post_gst;
          Alcotest.test_case "ess handover" `Quick test_checker_ess_handover;
          Alcotest.test_case "consensus" `Quick test_checker_consensus;
          Alcotest.test_case "weak set" `Quick test_checker_weak_set;
          Alcotest.test_case "exact agreement violation" `Quick
            test_checker_exact_agreement;
          Alcotest.test_case "exact no source" `Quick test_checker_exact_no_source;
          Alcotest.test_case "exact lost add" `Quick test_checker_exact_lost_add;
        ] );
      ( "config",
        [
          Alcotest.test_case "runner validation" `Quick
            test_runner_config_validation;
          Alcotest.test_case "service runner validation" `Quick
            test_service_runner_config_validation;
        ] );
      ( "env-property",
        [
          Alcotest.test_case "adversaries satisfy own env" `Quick
            test_adversaries_satisfy_own_env;
        ] );
    ]
