(* Blackboard: anonymous processes share observations through a weak-set
   (paper Alg. 4, §5) — the data structure that captures exactly what the
   moving-source environment can implement. Writers add observations and
   block until their value is guaranteed visible everywhere; readers get
   snapshots that always contain every completed add.

   Run with: dune exec examples/blackboard.exe *)

module K = Anon_kernel
module G = Anon_giraf
module C = Anon_consensus
module Blackboard = G.Service_runner.Make (C.Weak_set_ms)

let () =
  let n = 6 in
  (* Each process posts two observations early, then keeps reading. *)
  let workload =
    List.init n (fun pid ->
        ( pid,
          [
            (2, G.Service_runner.Do_add (100 + pid));
            (8, G.Service_runner.Do_add (200 + pid));
            (15, G.Service_runner.Do_get);
            (30, G.Service_runner.Do_get);
          ] ))
  in
  let crash = G.Crash.none ~n in
  let config =
    {
      G.Service_runner.n;
      crash;
      churn = G.Churn.none ~n;
      (* Pure moving source, rotating every round, zero extra links: the
         weakest network in which the weak-set is implementable. *)
      adversary = G.Adversary.ms ~rotation:G.Adversary.Round_robin ();
      horizon = 60;
      seed = 7;
    }
  in
  let outcome = Blackboard.run config ~workload in

  List.iter
    (fun (a : G.Service_runner.add_record) ->
      Format.printf "post %d by client %d: round %d -> completed %s@." a.value a.client
        a.invoked_round
        (match a.completed_round with None -> "never" | Some r -> "round " ^ string_of_int r))
    outcome.adds;
  List.iter
    (fun (op : G.Checker.ws_op) ->
      match op with
      | G.Checker.Ws_get g ->
        Format.printf "snapshot by client %d: %a@." g.get_client K.Value.pp_set g.get_result
      | G.Checker.Ws_add _ -> ())
    outcome.ops;

  match G.Checker.check_weak_set ~correct:(G.Crash.correct crash) outcome.ops with
  | [] -> Format.printf "checker: weak-set semantics hold (no lost or phantom values)@."
  | vs -> List.iter (fun v -> Format.printf "checker: %a@." G.Checker.pp_violation v) vs
